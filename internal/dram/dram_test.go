package dram

import (
	"testing"
	"testing/quick"

	"lacc/internal/mem"
)

func table1Model() *Model {
	return New(Config{
		Controllers:   8,
		LatencyCycles: 100,
		BytesPerCycle: 5,
		Tiles:         DefaultTiles(8, 8, 8),
	})
}

func TestDefaultTiles(t *testing.T) {
	tiles := DefaultTiles(8, 8, 8)
	if len(tiles) != 8 {
		t.Fatalf("got %d tiles", len(tiles))
	}
	seen := map[int]bool{}
	for _, tile := range tiles {
		if tile < 0 || tile >= 64 {
			t.Errorf("tile %d out of range", tile)
		}
		if seen[tile] {
			t.Errorf("tile %d duplicated", tile)
		}
		seen[tile] = true
		x := tile % 8
		if x != 0 && x != 7 {
			t.Errorf("tile %d not on an edge column", tile)
		}
	}
}

func TestControllerInterleaving(t *testing.T) {
	m := table1Model()
	// Consecutive lines must hit consecutive controllers.
	for i := 0; i < 16; i++ {
		a := mem.Addr(i * 64)
		if got, want := m.ControllerOf(a), i%8; got != want {
			t.Errorf("ControllerOf(%#x) = %d, want %d", a, got, want)
		}
	}
	// All offsets within a line map to the same controller.
	if m.ControllerOf(0x40) != m.ControllerOf(0x7f) {
		t.Error("intra-line offsets split across controllers")
	}
}

func TestReadLatency(t *testing.T) {
	m := table1Model()
	// 64B at 5 B/cycle = 13 cycles transfer + 100 latency.
	done := m.Read(0, 64, 0)
	if done != 113 {
		t.Fatalf("read done = %d, want 113", done)
	}
	if m.Reads != 1 || m.BytesMoved != 64 {
		t.Fatalf("stats: reads=%d bytes=%d", m.Reads, m.BytesMoved)
	}
}

func TestQueueingDelay(t *testing.T) {
	m := table1Model()
	a := m.Read(0, 64, 0) // occupies controller 0 until cycle 13
	b := m.Read(0, 64, 0) // must queue behind the first transfer
	if a != 113 {
		t.Fatalf("first = %d", a)
	}
	if b != 126 { // starts at 13, +13 transfer +100
		t.Fatalf("second = %d, want 126", b)
	}
	if m.QueueCycles != 13 {
		t.Fatalf("queue cycles = %d, want 13", m.QueueCycles)
	}
	// A different controller is independent.
	c := m.Read(1, 64, 0)
	if c != 113 {
		t.Fatalf("independent controller = %d, want 113", c)
	}
}

func TestWriteConsumesBandwidth(t *testing.T) {
	m := table1Model()
	m.Write(3, 64, 0)
	done := m.Read(3, 64, 0)
	if done != 126 { // queued behind the posted write
		t.Fatalf("read after write done = %d, want 126", done)
	}
	if m.Writes != 1 {
		t.Fatalf("writes = %d", m.Writes)
	}
}

func TestBadConfigPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"no controllers": func() { New(Config{Controllers: 0, BytesPerCycle: 1, Tiles: nil}) },
		"tile mismatch":  func() { New(Config{Controllers: 2, BytesPerCycle: 1, Tiles: []int{0}}) },
		"zero bandwidth": func() { New(Config{Controllers: 1, BytesPerCycle: 0, Tiles: []int{0}}) },
		"neg latency": func() {
			New(Config{Controllers: 1, BytesPerCycle: 1, LatencyCycles: -1, Tiles: []int{0}})
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestZeroByteTransferPanics(t *testing.T) {
	m := table1Model()
	defer func() {
		if recover() == nil {
			t.Fatal("zero-byte read did not panic")
		}
	}()
	m.Read(0, 0, 0)
}

// Property: completion times at a single controller are monotone for
// same-time arrivals, and every access takes at least latency + 1 cycle.
func TestServiceMonotoneProperty(t *testing.T) {
	f := func(sizes []uint8) bool {
		m := table1Model()
		var prev mem.Cycle
		for _, s := range sizes {
			bytes := int(s%64) + 1
			done := m.Read(0, bytes, 0)
			if done < prev {
				return false
			}
			if done < mem.Cycle(100+1) {
				return false
			}
			prev = done
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Package dram models the off-chip memory subsystem of Table 1: 8 memory
// controllers, 5 GBps of bandwidth per controller and 100 ns access latency.
// Queueing delay from the finite per-controller bandwidth is modeled with a
// next-free-time service queue, matching the paper's "queueing delay
// incurred due to finite off-chip bandwidth".
package dram

import (
	"fmt"
	"sync/atomic"

	"lacc/internal/mem"
)

// Config describes the off-chip memory system.
type Config struct {
	// Controllers is the number of memory controllers (Table 1: 8).
	Controllers int
	// LatencyCycles is the DRAM access latency (Table 1: 100 ns = 100
	// cycles at 1 GHz).
	LatencyCycles int
	// BytesPerCycle is the per-controller bandwidth (Table 1: 5 GBps at
	// 1 GHz = 5 bytes per cycle).
	BytesPerCycle float64
	// Tiles lists the mesh tile hosting each controller. Length must equal
	// Controllers.
	Tiles []int
}

// DefaultTiles places n controllers evenly on the left and right edges of a
// width×height mesh, mirroring tiled multicores with edge memory
// controllers (Figure 3 shows "Mem Ctrl" tiles on the chip boundary).
func DefaultTiles(n, width, height int) []int {
	tiles := make([]int, 0, n)
	half := (n + 1) / 2
	for i := 0; i < half; i++ { // left edge, evenly spaced rows
		row := i * height / half
		tiles = append(tiles, row*width)
	}
	for i := 0; len(tiles) < n; i++ { // right edge
		row := i * height / (n - half)
		tiles = append(tiles, row*width+width-1)
	}
	return tiles
}

// Model is the memory-controller array. A Model built by New is not safe
// for concurrent use; Clone returns handles sharing the controller queues
// through atomic updates for the sharded engine's workers.
type Model struct {
	cfg      Config
	nextFree []uint64

	// concurrent switches queue updates to atomic compare-and-swap loops.
	// Set only on clones.
	concurrent bool

	// Reads and Writes count line/word transfers per direction.
	Reads, Writes uint64
	// BytesMoved counts payload bytes for bandwidth sanity checks.
	BytesMoved uint64
	// QueueCycles accumulates total queueing delay for diagnostics.
	QueueCycles uint64
}

// New returns a DRAM model for cfg.
func New(cfg Config) *Model {
	if cfg.Controllers <= 0 {
		panic("dram: need at least one controller")
	}
	if len(cfg.Tiles) != cfg.Controllers {
		panic(fmt.Sprintf("dram: %d tiles for %d controllers", len(cfg.Tiles), cfg.Controllers))
	}
	if cfg.BytesPerCycle <= 0 {
		panic("dram: bandwidth must be positive")
	}
	if cfg.LatencyCycles < 0 {
		panic("dram: negative latency")
	}
	return &Model{cfg: cfg, nextFree: make([]uint64, cfg.Controllers)}
}

// Clone returns a handle onto the same controller array for one concurrent
// worker: the next-free queues are shared (workers observe each other's
// queueing delay) while the traffic counters are private, merged afterwards
// with AddCounters. The clone performs queue updates atomically; the
// original must stay quiescent while clones are live.
func (m *Model) Clone() *Model {
	return &Model{cfg: m.cfg, nextFree: m.nextFree, concurrent: true}
}

// AddCounters folds a clone's private traffic counters into m.
func (m *Model) AddCounters(o *Model) {
	m.Reads += o.Reads
	m.Writes += o.Writes
	m.BytesMoved += o.BytesMoved
	m.QueueCycles += o.QueueCycles
}

// Reset frees every controller and zeroes the traffic counters, returning
// the model to its post-New state for the same configuration.
func (m *Model) Reset() {
	clear(m.nextFree)
	m.Reads, m.Writes, m.BytesMoved, m.QueueCycles = 0, 0, 0, 0
}

// Matches reports whether the model was built for exactly cfg, so callers
// can reuse it across runs.
func (m *Model) Matches(cfg Config) bool {
	if m.cfg.Controllers != cfg.Controllers ||
		m.cfg.LatencyCycles != cfg.LatencyCycles ||
		m.cfg.BytesPerCycle != cfg.BytesPerCycle ||
		len(m.cfg.Tiles) != len(cfg.Tiles) {
		return false
	}
	for i, t := range cfg.Tiles {
		if m.cfg.Tiles[i] != t {
			return false
		}
	}
	return true
}

// ControllerOf maps a line address to its controller (line-interleaved).
func (m *Model) ControllerOf(a mem.Addr) int {
	return int(mem.LineIndex(a)) % m.cfg.Controllers
}

// TileOf returns the mesh tile hosting controller c.
func (m *Model) TileOf(c int) int { return m.cfg.Tiles[c] }

// Read services a line read of `bytes` bytes at controller c starting at
// `at` and returns the completion cycle (queueing + access latency +
// transfer).
func (m *Model) Read(c int, bytes int, at mem.Cycle) mem.Cycle {
	m.Reads++
	return m.service(c, bytes, at)
}

// Write services a write-back of `bytes` bytes at controller c. Write-backs
// consume bandwidth but the caller typically does not wait on the returned
// completion time (posted writes).
func (m *Model) Write(c int, bytes int, at mem.Cycle) mem.Cycle {
	m.Writes++
	return m.service(c, bytes, at)
}

func (m *Model) service(c int, bytes int, at mem.Cycle) mem.Cycle {
	if bytes <= 0 {
		panic("dram: non-positive transfer size")
	}
	transfer := mem.Cycle(float64(bytes)/m.cfg.BytesPerCycle + 0.999999)
	if transfer == 0 {
		transfer = 1
	}
	var start mem.Cycle
	if m.concurrent {
		p := &m.nextFree[c]
		for {
			cur := atomic.LoadUint64(p)
			start = at
			if free := mem.Cycle(cur); free > start {
				start = free
			}
			if atomic.CompareAndSwapUint64(p, cur, uint64(start+transfer)) {
				break
			}
		}
	} else {
		start = at
		if free := mem.Cycle(m.nextFree[c]); free > start {
			start = free
		}
		m.nextFree[c] = uint64(start + transfer)
	}
	m.QueueCycles += uint64(start - at)
	m.BytesMoved += uint64(bytes)
	return start + transfer + mem.Cycle(m.cfg.LatencyCycles)
}

package lacc_test

// Documentation gates, run by the CI docs job:
//
//   - TestGodocCoverage fails when an exported symbol of the root lacc
//     package has no doc comment, so the public surface can't silently
//     grow undocumented.
//   - TestMarkdownLinks fails on a relative link in README.md, DESIGN.md
//     or docs/ whose target file (or heading anchor) doesn't exist, so
//     the docs can't silently rot as files move.

import (
	"fmt"
	"go/ast"
	"go/doc"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// TestGodocCoverage parses the root package and reports every exported
// identifier without a godoc comment.
func TestGodocCoverage(t *testing.T) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, ".", func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	pkg, ok := pkgs["lacc"]
	if !ok {
		t.Fatalf("package lacc not found in . (got %v)", pkgs)
	}
	d := doc.New(pkg, "lacc", 0)
	if strings.TrimSpace(d.Doc) == "" {
		t.Error("package lacc has no package comment")
	}

	var missing []string
	report := func(kind, name, docStr string) {
		if ast.IsExported(name) && strings.TrimSpace(docStr) == "" {
			missing = append(missing, fmt.Sprintf("%s %s", kind, name))
		}
	}
	grouped := func(kind string, doc string, specs []string) {
		// A const/var group is documented if the group has a comment;
		// otherwise each exported name needs one of its own (go/doc
		// attaches per-spec comments to the group when present).
		if strings.TrimSpace(doc) != "" {
			return
		}
		for _, n := range specs {
			report(kind, n, "")
		}
	}
	for _, f := range d.Funcs {
		report("func", f.Name, f.Doc)
	}
	for _, ty := range d.Types {
		report("type", ty.Name, ty.Doc)
		for _, f := range ty.Funcs {
			report("func", f.Name, f.Doc)
		}
		for _, m := range ty.Methods {
			report("method", ty.Name+"."+m.Name, m.Doc)
		}
		for _, c := range ty.Consts {
			grouped("const", c.Doc, c.Names)
		}
		for _, v := range ty.Vars {
			grouped("var", v.Doc, v.Names)
		}
	}
	for _, c := range d.Consts {
		grouped("const", c.Doc, c.Names)
	}
	for _, v := range d.Vars {
		grouped("var", v.Doc, v.Names)
	}
	for _, m := range missing {
		t.Errorf("undocumented exported symbol: %s", m)
	}
}

// docFiles returns the markdown files the link checker covers.
func docFiles(t *testing.T) []string {
	t.Helper()
	files := []string{"README.md", "DESIGN.md", "ROADMAP.md", "CHANGES.md"}
	docs, err := filepath.Glob(filepath.Join("docs", "*.md"))
	if err != nil {
		t.Fatal(err)
	}
	return append(files, docs...)
}

// mdLink matches inline markdown links [text](target), skipping images.
var mdLink = regexp.MustCompile(`[^!]\[[^\]]*\]\(([^)\s]+)\)`)

// TestMarkdownLinks checks every relative link target (and heading
// anchor) in the documentation set.
func TestMarkdownLinks(t *testing.T) {
	anchors := map[string]map[string]bool{} // file -> slug set
	for _, f := range docFiles(t) {
		b, err := os.ReadFile(f)
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		anchors[f] = headingSlugs(string(b))
	}
	for _, f := range docFiles(t) {
		b, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(b), -1) {
			target := m[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") {
				continue // external; not checked offline
			}
			file, anchor, _ := strings.Cut(target, "#")
			resolved := f // self link
			if file != "" {
				resolved = filepath.Join(filepath.Dir(f), file)
				if _, err := os.Stat(resolved); err != nil {
					t.Errorf("%s: broken link %q: %v", f, target, err)
					continue
				}
			}
			if anchor == "" {
				continue
			}
			slugs, known := anchors[filepath.ToSlash(resolved)]
			if !known {
				// Anchor into a file outside the doc set (e.g. code);
				// existence was already checked above.
				continue
			}
			if !slugs[anchor] {
				t.Errorf("%s: link %q: no heading with anchor #%s in %s", f, target, anchor, resolved)
			}
		}
	}
}

// headingSlugs extracts GitHub-style anchors from markdown headings.
func headingSlugs(src string) map[string]bool {
	out := map[string]bool{}
	inFence := false
	for _, line := range strings.Split(src, "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
			continue
		}
		if inFence || !strings.HasPrefix(line, "#") {
			continue
		}
		text := strings.TrimSpace(strings.TrimLeft(line, "#"))
		var b strings.Builder
		for _, r := range strings.ToLower(text) {
			switch {
			// GitHub keeps letters, digits, hyphens and underscores,
			// maps spaces to hyphens, and strips other punctuation.
			case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '-', r == '_':
				b.WriteRune(r)
			case r == ' ':
				b.WriteByte('-')
			}
		}
		out[b.String()] = true
	}
	return out
}

// Command lacc-check runs the bounded explicit-state model checker over
// the simulator's coherence protocols. It explores every interleaving of
// a small access alphabet (each core reading and writing a few shared
// lines) up to a depth bound, verifying SWMR, the data-value invariant
// and directory/cache structural agreement at every reachable state.
//
// A violation exits non-zero and prints the interleaving plus its
// counterexample encoded as a trace-format program; -o saves that trace
// for replay with lacc-trace or as a permanent regression input.
//
// The -self-test mode seeds a known protocol defect (dropped
// invalidations; dropped update pushes for Dragon and hybrid; dropped
// remote word writes for DLS) and requires the checker to find it and to
// close the loop: the counterexample must fail when replayed under the
// fault and pass on a healthy simulator. It guards the checker itself
// against silently losing its teeth.
//
// Usage:
//
//	lacc-check -protocol all
//	lacc-check -protocol adaptive -cores 3 -depth 8
//	lacc-check -protocol all -self-test
//	lacc-check -protocol mesi -self-test -o mesi-swmr.trace
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"lacc/internal/check"
	"lacc/internal/mem"
	"lacc/internal/sim"
	"lacc/internal/trace"
)

// variant is one protocol configuration under test.
type variant struct {
	name    string
	kind    sim.ProtocolKind
	ackwise int // directory pointer override; 0 keeps the default (full-map)

	// selfFault is the defect -self-test seeds: Dragon's update pushes are
	// its sole write-propagation mechanism, the others rely on
	// invalidations.
	selfFault sim.Faults
}

var variants = []variant{
	{"adaptive", sim.ProtocolAdaptive, 0, sim.Faults{DropInvalidations: true}},
	{"adaptive-ackwise1", sim.ProtocolAdaptive, 1, sim.Faults{DropInvalidations: true}},
	{"mesi", sim.ProtocolMESI, 0, sim.Faults{DropInvalidations: true}},
	{"dragon", sim.ProtocolDragon, 0, sim.Faults{DropUpdates: true}},
	{"dls", sim.ProtocolDLS, 0, sim.Faults{DropWordWrites: true}},
	{"neat", sim.ProtocolNeat, 0, sim.Faults{DropInvalidations: true}},
	{"hybrid", sim.ProtocolHybrid, 0, sim.Faults{DropUpdates: true}},
}

func main() {
	fs := flag.NewFlagSet("lacc-check", flag.ExitOnError)
	protocol := fs.String("protocol", "all", "protocol to check: adaptive, adaptive-ackwise1, mesi, dragon, dls, neat, hybrid, or all")
	cores := fs.Int("cores", 2, "cores in the model (state space grows steeply; 2-3 is exhaustive territory)")
	depth := fs.Int("depth", 12, "maximum interleaving length")
	maxStates := fs.Int("max-states", 1<<18, "visited-state bound")
	selfTest := fs.Bool("self-test", false, "seed a known defect per protocol and require a counterexample")
	out := fs.String("o", "", "write the first counterexample trace to this file")
	fs.Parse(os.Args[1:])

	var selected []variant
	for _, v := range variants {
		if *protocol == "all" || *protocol == v.name {
			selected = append(selected, v)
		}
	}
	if len(selected) == 0 {
		fmt.Fprintf(os.Stderr, "lacc-check: unknown protocol %q\n", *protocol)
		os.Exit(2)
	}

	failed := false
	for _, v := range selected {
		opts := check.Options{
			Config:    check.Bound(v.kind, *cores, v.ackwise),
			MaxDepth:  *depth,
			MaxStates: *maxStates,
		}
		if *selfTest {
			opts.Faults = v.selfFault
		}
		start := time.Now()
		rep, err := check.Run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lacc-check: %s: %v\n", v.name, err)
			os.Exit(1)
		}
		status := "exhausted"
		if rep.Truncated {
			status = "bounded"
		}
		fmt.Printf("%-18s %d cores  %6d states  %6d transitions  depth %2d  %s  %v\n",
			v.name, *cores, rep.States, rep.Transitions, rep.Depth, status,
			time.Since(start).Round(time.Millisecond))

		if *selfTest {
			if !reportSelfTest(v, opts, rep) {
				failed = true
			}
		} else if rep.Violation != nil {
			reportViolation(v, rep.Violation)
			failed = true
		}
		if rep.Violation != nil && *out != "" {
			if err := writeTrace(*out, rep.Violation.Trace); err != nil {
				fmt.Fprintf(os.Stderr, "lacc-check: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("  counterexample trace written to %s\n", *out)
			*out = "" // first violation only
		}
	}
	if failed {
		os.Exit(1)
	}
}

// reportSelfTest verifies the seeded-defect closed loop and returns
// whether it held.
func reportSelfTest(v variant, opts check.Options, rep *check.Report) bool {
	viol := rep.Violation
	if viol == nil {
		fmt.Printf("  SELF-TEST FAILED: seeded fault %+v found no violation\n", opts.Faults)
		return false
	}
	if viol.ReplayFailure == "" {
		fmt.Printf("  SELF-TEST FAILED: counterexample replayed clean under the fault\n")
		return false
	}
	if clean := check.Replay(opts.Config, sim.Faults{}, viol.Trace); clean != "" {
		fmt.Printf("  SELF-TEST FAILED: counterexample fails on a healthy simulator: %s\n", clean)
		return false
	}
	fmt.Printf("  self-test ok: %s violation in %d steps, replay fails under fault, clean when healthy\n",
		viol.Kind, len(viol.Path))
	return true
}

func reportViolation(v variant, viol *check.Violation) {
	fmt.Printf("  VIOLATION (%s): %s\n", viol.Kind, viol.Detail)
	fmt.Printf("  interleaving:")
	for _, a := range viol.Path {
		fmt.Printf("  %v", a)
	}
	fmt.Println()
	if viol.ReplayFailure != "" {
		fmt.Printf("  trace replay fails: %s\n", viol.ReplayFailure)
	} else {
		fmt.Printf("  trace replay unexpectedly clean (timing-dependent violation?)\n")
	}
}

func writeTrace(path string, streams [][]mem.Access) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return trace.WriteFile(f, streams)
}

// Command lacc-serve runs the experiment-serving HTTP service: the whole
// lacc experiment surface (single runs, PCT sweeps, protocol comparisons,
// every paper figure) behind a JSON API, on top of one process-wide
// simulation-result cache.
//
// Usage:
//
//	lacc-serve [flags]
//
//	lacc-serve -addr :8080 -max-inflight 4 -max-queue 128
//	lacc-serve -store-dir /var/lib/lacc -store-max-bytes 268435456
//	lacc-serve -store-dir /var/lib/lacc -peers n1:8080,n2:8080,n3:8080 -self n1:8080
//	curl -s localhost:8080/v1/healthz
//	curl -s localhost:8080/v1/run -d '{"workload":"streamcluster","cores":16,"scale":0.1}'
//	curl -s localhost:8080/v1/experiments/pct-sweep -d '{"cores":16,"scale":0.1,"pcts":[1,2,4]}'
//	curl -s localhost:8080/v1/stats
//
// See docs/API.md for the endpoint reference and DESIGN.md ("Serving
// experiments") for the caching, coalescing and admission design.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"lacc/internal/cluster"
	"lacc/internal/server"
	"lacc/internal/store"
	"lacc/internal/workloads"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		maxInflight = flag.Int("max-inflight", 2, "max concurrently executing experiment requests")
		maxQueue    = flag.Int("max-queue", 64, "max requests waiting for an execution slot before 429")
		parallel    = flag.Int("parallel", 0, "concurrent simulations per experiment execution (0 = GOMAXPROCS)")
		maxCores    = flag.Int("max-cores", 256, "largest machine size a request may ask for")
		maxScale    = flag.Float64("max-scale", 8, "largest problem-size multiplier a request may ask for")
		spillDir    = flag.String("corpus-spill", "", "spill materialized traces above -corpus-spill-min accesses to this directory")
		spillMin    = flag.Uint64("corpus-spill-min", 8<<20, "minimum corpus size in accesses before spilling to -corpus-spill")
		storeDir    = flag.String("store-dir", "", "persist experiment results to this directory (restart-warm serving)")
		storeMax    = flag.Int64("store-max-bytes", 0, "evict oldest result segments above this on-disk footprint (0 = unbounded)")
		maxRunSecs  = flag.Float64("max-run-seconds", 0, "cancel any experiment execution exceeding this wall-clock budget with 503 (0 = unlimited)")
		peers       = flag.String("peers", "", "comma-separated cluster membership (host:port,...) for peer-replicated result serving")
		self        = flag.String("self", "", "this node's own address within -peers (required with -peers)")
		peerReps    = flag.Int("peer-replicas", 0, "owner peers per result key for fetch and replication (0 = 2, clamped to the cluster size)")
		peerBudget  = flag.Float64("peer-budget-seconds", 0, "max wall clock one local miss may spend consulting peers before simulating (0 = 2s)")
		sseBeatSecs = flag.Float64("sse-heartbeat-seconds", 0, "idle-keepalive comment cadence on SSE progress streams (0 = 15s, negative disables)")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintln(os.Stderr, "usage: lacc-serve [flags] (no positional arguments)")
		os.Exit(2)
	}

	if *spillDir != "" {
		if err := workloads.SetCorpusSpill(*spillDir, *spillMin); err != nil {
			log.Fatalf("lacc-serve: -corpus-spill: %v", err)
		}
	}

	// The durable tier is optional: without -store-dir the server runs
	// memory-only exactly as before. With it, results survive restarts —
	// a recovered store answers previously computed sweeps from disk with
	// zero re-simulation.
	var st *store.Store
	if *storeDir != "" {
		var err error
		st, err = store.Open(store.Options{Dir: *storeDir, MaxBytes: *storeMax, Logf: log.Printf})
		if err != nil {
			log.Fatalf("lacc-serve: -store-dir: %v", err)
		}
		sst := st.Stats()
		log.Printf("lacc-serve: result store %s: %d entries in %d segments (%d bytes); recovery: %s",
			*storeDir, sst.Entries, sst.Segments, sst.Bytes, sst.LastRecovery)
	}

	// The peer tier is optional like the store: without -peers the node
	// serves standalone. With it, local misses consult the key's owner
	// peers before simulating, and fresh results replicate to them — a
	// cold node joining a warm cluster answers warm sweeps without
	// simulating or sharing a disk. Peer failures never fail or stall
	// requests; they flip /v1/healthz's cluster mode to "degraded".
	var cl *cluster.Cluster
	if *peers != "" {
		var list []string
		for _, p := range strings.Split(*peers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				list = append(list, p)
			}
		}
		var err error
		cl, err = cluster.New(cluster.Config{
			Self:     *self,
			Peers:    list,
			Replicas: *peerReps,
			Budget:   time.Duration(*peerBudget * float64(time.Second)),
			Logf:     log.Printf,
		})
		if err != nil {
			log.Fatalf("lacc-serve: -peers: %v", err)
		}
		log.Printf("lacc-serve: cluster of %d peers, self %s", len(list), *self)
	} else if *self != "" {
		log.Fatalf("lacc-serve: -self is meaningless without -peers")
	}

	sseBeat := time.Duration(*sseBeatSecs * float64(time.Second))
	if *sseBeatSecs < 0 {
		sseBeat = -1
	}
	h := server.New(server.Config{
		MaxInFlight:  *maxInflight,
		MaxQueue:     *maxQueue,
		Parallelism:  *parallel,
		MaxCores:     *maxCores,
		MaxScale:     *maxScale,
		Store:        st,
		Cluster:      cl,
		SSEHeartbeat: sseBeat,
		MaxRunTime:   time.Duration(*maxRunSecs * float64(time.Second)),
		Logf:         log.Printf,
	})
	srv := &http.Server{
		Addr:    *addr,
		Handler: h,
		// No write timeout: sweeps and SSE streams legitimately run long.
		ReadHeaderTimeout: 10 * time.Second,
	}

	// Serve until SIGINT/SIGTERM, then drain in-flight requests.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("lacc-serve: listening on %s (max-inflight %d, queue %d)", *addr, *maxInflight, *maxQueue)

	select {
	case err := <-errc:
		log.Fatalf("lacc-serve: %v", err)
	case <-ctx.Done():
	}
	log.Printf("lacc-serve: shutting down")
	// End in-flight SSE streams with a terminal event before Shutdown's
	// connection drain, which would otherwise wait on arbitrarily long
	// progress streams (plain requests finish normally during the drain).
	h.Drain()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		log.Printf("lacc-serve: forced shutdown: %v", err)
		srv.Close()
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("lacc-serve: %v", err)
	}
	// Close the cluster client before the store: its replication workers
	// drain their queue into peer connections, and nothing can enqueue
	// more once the listener is gone.
	if cl != nil {
		cl.Close()
	}
	// Close the store only after the listener has fully drained: write-behind
	// happens inside request handling, so nothing can race this final seal.
	if st != nil {
		if err := st.Close(); err != nil {
			log.Printf("lacc-serve: closing result store: %v", err)
		}
	}
}

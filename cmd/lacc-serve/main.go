// Command lacc-serve runs the experiment-serving HTTP service: the whole
// lacc experiment surface (single runs, PCT sweeps, protocol comparisons,
// every paper figure) behind a JSON API, on top of one process-wide
// simulation-result cache.
//
// Usage:
//
//	lacc-serve [flags]
//
//	lacc-serve -addr :8080 -max-inflight 4 -max-queue 128
//	curl -s localhost:8080/v1/healthz
//	curl -s localhost:8080/v1/run -d '{"workload":"streamcluster","cores":16,"scale":0.1}'
//	curl -s localhost:8080/v1/experiments/pct-sweep -d '{"cores":16,"scale":0.1,"pcts":[1,2,4]}'
//	curl -s localhost:8080/v1/stats
//
// See docs/API.md for the endpoint reference and DESIGN.md ("Serving
// experiments") for the caching, coalescing and admission design.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"lacc/internal/server"
	"lacc/internal/workloads"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		maxInflight = flag.Int("max-inflight", 2, "max concurrently executing experiment requests")
		maxQueue    = flag.Int("max-queue", 64, "max requests waiting for an execution slot before 429")
		parallel    = flag.Int("parallel", 0, "concurrent simulations per experiment execution (0 = GOMAXPROCS)")
		maxCores    = flag.Int("max-cores", 256, "largest machine size a request may ask for")
		maxScale    = flag.Float64("max-scale", 8, "largest problem-size multiplier a request may ask for")
		spillDir    = flag.String("corpus-spill", "", "spill materialized traces above -corpus-spill-min accesses to this directory")
		spillMin    = flag.Uint64("corpus-spill-min", 8<<20, "minimum corpus size in accesses before spilling to -corpus-spill")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintln(os.Stderr, "usage: lacc-serve [flags] (no positional arguments)")
		os.Exit(2)
	}

	if *spillDir != "" {
		if err := workloads.SetCorpusSpill(*spillDir, *spillMin); err != nil {
			log.Fatalf("lacc-serve: -corpus-spill: %v", err)
		}
	}

	h := server.New(server.Config{
		MaxInFlight: *maxInflight,
		MaxQueue:    *maxQueue,
		Parallelism: *parallel,
		MaxCores:    *maxCores,
		MaxScale:    *maxScale,
	})
	srv := &http.Server{
		Addr:    *addr,
		Handler: h,
		// No write timeout: sweeps and SSE streams legitimately run long.
		ReadHeaderTimeout: 10 * time.Second,
	}

	// Serve until SIGINT/SIGTERM, then drain in-flight requests.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("lacc-serve: listening on %s (max-inflight %d, queue %d)", *addr, *maxInflight, *maxQueue)

	select {
	case err := <-errc:
		log.Fatalf("lacc-serve: %v", err)
	case <-ctx.Done():
	}
	log.Printf("lacc-serve: shutting down")
	// End in-flight SSE streams with a terminal event before Shutdown's
	// connection drain, which would otherwise wait on arbitrarily long
	// progress streams (plain requests finish normally during the drain).
	h.Drain()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		log.Printf("lacc-serve: forced shutdown: %v", err)
		srv.Close()
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("lacc-serve: %v", err)
	}
}

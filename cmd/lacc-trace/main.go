// Command lacc-trace records benchmark traces to a compact binary file,
// inspects them, and replays them through the simulator. Recorded traces
// decouple workload generation from protocol evaluation: the exact same
// access sequence can be replayed under different protocol configurations.
//
// Usage:
//
//	lacc-trace record -workload streamcluster -o sc.trace
//	lacc-trace info sc.trace
//	lacc-trace replay -pct 4 sc.trace
package main

import (
	"flag"
	"fmt"
	"os"

	"lacc"
	"lacc/internal/mem"
	"lacc/internal/report"
	"lacc/internal/trace"
	"lacc/internal/workloads"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "record":
		record(os.Args[2:])
	case "info":
		info(os.Args[2:])
	case "replay":
		replay(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: lacc-trace record|info|replay [flags] [file]")
	os.Exit(2)
}

func record(args []string) {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	workload := fs.String("workload", "streamcluster", "benchmark to record")
	cores := fs.Int("cores", 64, "number of cores")
	scale := fs.Float64("scale", 1.0, "problem-size multiplier")
	seed := fs.Uint64("seed", 0, "workload randomness seed")
	out := fs.String("o", "", "output file (required)")
	fs.Parse(args)
	if *out == "" {
		fatal(fmt.Errorf("record: -o is required"))
	}

	w, ok := workloads.ByName(*workload)
	if !ok {
		fatal(fmt.Errorf("unknown workload %q", *workload))
	}
	streams := w.Streams(workloads.Spec{Cores: *cores, Scale: *scale, Seed: *seed})
	recorded := trace.Record(streams)

	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	if err := trace.WriteFile(f, recorded); err != nil {
		fatal(err)
	}
	var total int
	for _, s := range recorded {
		total += len(s)
	}
	st, _ := f.Stat()
	fmt.Printf("recorded %s: %d cores, %d accesses", *workload, len(recorded), total)
	if st != nil && total > 0 {
		fmt.Printf(", %d bytes (%.2f B/access)", st.Size(), float64(st.Size())/float64(total))
	}
	fmt.Println()
}

func load(path string) [][]mem.Access {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	accs, err := trace.ReadFile(f)
	if err != nil {
		fatal(err)
	}
	return accs
}

func info(args []string) {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
	}
	accs := load(fs.Arg(0))

	t := report.NewTable(fmt.Sprintf("%s: %d cores", fs.Arg(0), len(accs)),
		"core", "reads", "writes", "barriers", "locks", "compute-cycles", "footprint-lines")
	var tr, tw, tb, tl, tc uint64
	global := map[mem.Addr]struct{}{}
	for c, stream := range accs {
		var r, w, b, l, comp uint64
		lines := map[mem.Addr]struct{}{}
		for _, a := range stream {
			comp += uint64(a.Gap)
			switch a.Kind {
			case mem.Read:
				r++
				lines[mem.LineOf(a.Addr)] = struct{}{}
				global[mem.LineOf(a.Addr)] = struct{}{}
			case mem.Write:
				w++
				lines[mem.LineOf(a.Addr)] = struct{}{}
				global[mem.LineOf(a.Addr)] = struct{}{}
			case mem.Barrier:
				b++
			case mem.Lock:
				l++
			}
		}
		t.AddRowValues(c, r, w, b, l, comp, len(lines))
		tr, tw, tb, tl, tc = tr+r, tw+w, tb+b, tl+l, tc+comp
	}
	t.AddRowValues("total", tr, tw, tb, tl, tc, len(global))
	if err := t.Write(os.Stdout); err != nil {
		fatal(err)
	}
}

func replay(args []string) {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	protocol := fs.String("protocol", "adaptive", "coherence protocol: adaptive, mesi, dragon, dls, neat, hybrid")
	pct := fs.Int("pct", 4, "private caching threshold")
	classifier := fs.Int("classifier-k", 3, "Limited-k classifier size (0 = Complete)")
	meshWidth := fs.Int("mesh-width", 0, "mesh X dimension (0 = auto)")
	fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
	}
	accs := load(fs.Arg(0))

	cfg := lacc.DefaultConfig()
	cfg.Cores = len(accs)
	cfg.MeshWidth = autoWidth(cfg.Cores, *meshWidth)
	if cfg.MemControllers > cfg.Cores {
		cfg.MemControllers = cfg.Cores
	}
	cfg.ProtocolKind = lacc.ProtocolKind(*protocol)
	cfg.Protocol.PCT = *pct
	cfg.ClassifierK = *classifier

	res, err := lacc.Run(cfg, trace.FromSlices(accs))
	if err != nil {
		fatal(err)
	}
	fmt.Printf("replayed %s under protocol=%s pct=%d classifier-k=%d\n",
		fs.Arg(0), res.Protocol, *pct, *classifier)
	fmt.Printf("completion: %d cycles, energy: %.0f pJ, L1-D miss rate: %.2f%%\n",
		res.CompletionCycles, res.Energy.Total(), res.L1DMissRate())
	fmt.Printf("word accesses: %d reads, %d writes; updates: %d; invalidations: %d\n",
		res.WordReads, res.WordWrites, res.UpdateWrites, res.Invalidations)
}

func autoWidth(cores, flagWidth int) int {
	if flagWidth > 0 {
		return flagWidth
	}
	best := 1
	for w := 1; w*w <= cores; w++ {
		if cores%w == 0 {
			best = w
		}
	}
	return best
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lacc-trace:", err)
	os.Exit(1)
}

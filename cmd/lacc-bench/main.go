// Command lacc-bench regenerates the tables and figures of the paper's
// evaluation section.
//
// Usage:
//
//	lacc-bench [flags] <experiment> [<experiment>...]
//	lacc-bench -quick all
//
// Experiments: fig1, fig2, fig8, fig9, fig10, fig11, fig12, fig13, fig14,
// table1, table2, storage, ackwise, protocols, all. Figures 8-11 share one
// PCT sweep, which is run once even when several of them are requested.
// The protocols experiment runs every registered coherence protocol side
// by side: full-map MESI, Dragon write-update, directoryless DLS, the
// self-invalidating Neat, the per-line MESI/Dragon hybrid and the
// locality-aware adaptive protocol.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"lacc/internal/experiments"
	"lacc/internal/sim"
	"lacc/internal/store"
	"lacc/internal/workloads"
)

var allExperiments = []string{
	"table1", "table2", "storage", "storage-scaling",
	"fig1", "fig2", "fig8", "fig9", "fig10", "fig11",
	"fig12", "fig13", "fig14", "ackwise", "scaling", "vr",
	"protocols",
}

func main() {
	var (
		cores     = flag.Int("cores", 64, "number of cores (tiles)")
		meshWidth = flag.Int("mesh-width", 0, "mesh X dimension (0 = auto)")
		scale     = flag.Float64("scale", 1.0, "problem-size multiplier")
		seed      = flag.Uint64("seed", 0, "workload randomness seed")
		benches   = flag.String("benchmarks", "", "comma-separated benchmark subset (default: all 21)")
		parallel  = flag.Int("parallel", 0, "concurrent simulations (0 = GOMAXPROCS)")
		shards    = flag.Int("shards", 0, "shard-parallel engine workers per simulation (0/1 = sequential; >1 is not run-to-run deterministic)")
		quick     = flag.Bool("quick", false, "reduced machine (16 cores, scale 0.25) for a fast pass")
		timing    = flag.Bool("time", true, "report wall-clock time per experiment")
		jsonOut   = flag.Bool("json", false, "benchcore: emit results as JSON to stdout")
		checkFile = flag.String("check-bench", "", "benchcore: compare allocs/op against this baseline JSON, exit nonzero on >20% regression")
		storeDir  = flag.String("store-dir", "", "persist simulation results to this directory and reuse them across invocations")
		spillDir  = flag.String("corpus-spill", "", "spill materialized traces above -corpus-spill-min accesses to this directory (for large -scale runs)")
		spillMin  = flag.Uint64("corpus-spill-min", 8<<20, "minimum corpus size in accesses before spilling to -corpus-spill")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile of the whole invocation to this file (go tool pprof)")
		memProf   = flag.String("memprofile", "", "write an allocation profile to this file on exit (go tool pprof)")
	)
	flag.Parse()

	// Profiling hooks, so hot-loop work on the simulator is measurable on
	// the real experiment workloads without hand-editing the harness:
	//
	//	lacc-bench -cpuprofile cpu.out -quick fig8
	//	go tool pprof -top cpu.out
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fatal(fmt.Errorf("-cpuprofile: %w", err))
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(fmt.Errorf("-cpuprofile: %w", err))
		}
		prev := flushProfiles
		flushProfiles = func() {
			pprof.StopCPUProfile()
			f.Close()
			prev()
		}
	}
	if *memProf != "" {
		path := *memProf
		prev := flushProfiles
		flushProfiles = func() {
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, "lacc-bench: -memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize the final live set
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "lacc-bench: -memprofile:", err)
			}
			prev()
		}
	}
	defer flushProfilesOnce()

	if *spillDir != "" {
		if err := workloads.SetCorpusSpill(*spillDir, *spillMin); err != nil {
			fatal(fmt.Errorf("-corpus-spill: %w", err))
		}
	}

	// One session for the whole invocation: experiments share simulation
	// results (figures 8-11 share most PCT points) and pooled simulators.
	// With -store-dir the session also reads and writes a durable result
	// store, so re-running the same figures costs decode time, not
	// simulation time — even across invocations.
	session := experiments.NewSession()
	if *storeDir != "" {
		st, err := store.Open(store.Options{Dir: *storeDir})
		if err != nil {
			fatal(fmt.Errorf("-store-dir: %w", err))
		}
		defer func() {
			if err := st.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "lacc-bench: closing result store:", err)
			}
		}()
		session = experiments.NewSessionWithStore(st, nil)
	}
	opts := experiments.Options{
		Cores:       *cores,
		MeshWidth:   *meshWidth,
		Scale:       *scale,
		Seed:        *seed,
		Parallelism: *parallel,
		Shards:      *shards,
		Session:     session,
	}
	if *shards < 0 {
		fatal(fmt.Errorf("-shards %d is negative", *shards))
	}
	if *quick {
		opts.Cores = 16
		opts.MeshWidth = 4
		opts.Scale = 0.25
	}
	if *benches != "" {
		for _, b := range strings.Split(*benches, ",") {
			b = strings.TrimSpace(b)
			if _, ok := workloads.ByName(b); !ok {
				fatal(fmt.Errorf("unknown benchmark %q", b))
			}
			opts.Benchmarks = append(opts.Benchmarks, b)
		}
	}

	requested := flag.Args()
	if len(requested) == 0 {
		fmt.Fprintf(os.Stderr, "usage: lacc-bench [flags] <experiment>...\nexperiments: %s, all, benchcore\n",
			strings.Join(allExperiments, ", "))
		os.Exit(2)
	}
	var list []string
	for _, r := range requested {
		if r == "all" {
			list = append(list, allExperiments...)
			continue
		}
		list = append(list, r)
	}

	r := runner{opts: opts, timing: *timing, jsonOut: *jsonOut, checkFile: *checkFile}
	for _, name := range list {
		if err := r.run(name); err != nil {
			fatal(err)
		}
		fmt.Println()
	}
}

// runner caches the shared PCT sweep and Figure 1/2 run across experiments.
type runner struct {
	opts      experiments.Options
	timing    bool
	jsonOut   bool
	checkFile string

	sweep8  *experiments.PCTSweep // PCT 1..8 (figures 8 and 9)
	sweep11 *experiments.PCTSweep // extended sweep (figure 11)
	sweep10 *experiments.PCTSweep // reduced sweep (figure 10)
	fig12   *experiments.Fig1And2Result
}

func (r *runner) run(name string) error {
	start := time.Now()
	var err error
	switch name {
	case "table1":
		cfg := r.opts.Config
		if cfg == nil {
			d := sim.Default()
			d.Cores = r.opts.Cores
			cfg = &d
		}
		err = experiments.RenderTable1(*cfg, os.Stdout)
	case "table2":
		err = experiments.RenderTable2(os.Stdout)
	case "storage":
		err = experiments.Storage(sim.Default()).Render(os.Stdout)
	case "fig1", "fig2":
		if r.fig12 == nil {
			if r.fig12, err = experiments.Fig1And2(r.opts); err != nil {
				return err
			}
		}
		err = r.fig12.Render(os.Stdout)
	case "fig8":
		var sw *experiments.PCTSweep
		if sw, err = r.get8(); err == nil {
			err = sw.RenderFig8(os.Stdout)
		}
	case "fig9":
		var sw *experiments.PCTSweep
		if sw, err = r.get8(); err == nil {
			err = sw.RenderFig9(os.Stdout)
		}
	case "fig10":
		if r.sweep10 == nil {
			if r.sweep10, err = experiments.RunPCTSweep(r.opts, experiments.Fig10PCTs); err != nil {
				return err
			}
		}
		err = r.sweep10.RenderFig10(os.Stdout)
	case "fig11":
		if r.sweep11 == nil {
			if r.sweep11, err = experiments.RunPCTSweep(r.opts, experiments.Fig11PCTs); err != nil {
				return err
			}
		}
		err = r.sweep11.Fig11().Render(os.Stdout)
	case "fig12":
		var f *experiments.Fig12Result
		if f, err = experiments.Fig12(r.opts); err == nil {
			err = f.Render(os.Stdout)
		}
	case "fig13":
		var f *experiments.Fig13Result
		if f, err = experiments.Fig13(r.opts); err == nil {
			err = f.Render(os.Stdout)
		}
	case "fig14":
		var f *experiments.Fig14Result
		if f, err = experiments.Fig14(r.opts); err == nil {
			err = f.Render(os.Stdout)
		}
	case "ackwise":
		var a *experiments.AckwiseComparisonResult
		if a, err = experiments.AckwiseComparison(r.opts, nil); err == nil {
			err = a.Render(os.Stdout)
		}
	case "protocols":
		var p *experiments.ProtocolComparisonResult
		if p, err = experiments.ProtocolComparison(r.opts, nil); err == nil {
			err = p.Render(os.Stdout)
		}
	case "storage-scaling":
		err = experiments.StorageScaling(nil).Render(os.Stdout)
	case "vr":
		var v *experiments.VictimReplicationResult
		if v, err = experiments.VictimReplication(r.opts); err == nil {
			err = v.Render(os.Stdout)
		}
	case "scaling":
		var p *experiments.PerformanceScalingResult
		if p, err = experiments.PerformanceScaling(r.opts, nil); err == nil {
			err = p.Render(os.Stdout)
		}
	case "benchcore":
		// The benchmark-regression harness (see benchcore.go). Not part of
		// `all`: it re-runs simulations many times to get stable numbers.
		err = runBenchCore(r.jsonOut, r.checkFile)
	default:
		return fmt.Errorf("unknown experiment %q (want one of %s, all)",
			name, strings.Join(allExperiments, ", "))
	}
	if err != nil {
		return err
	}
	if r.timing {
		// With -json the documented redirection (`lacc-bench -json
		// benchcore > BENCH_core.json`) must stay valid JSON, so the
		// timing line moves to stderr.
		out := os.Stdout
		if r.jsonOut {
			out = os.Stderr
		}
		fmt.Fprintf(out, "[%s in %v]\n", name, time.Since(start).Round(time.Millisecond))
	}
	return nil
}

func (r *runner) get8() (*experiments.PCTSweep, error) {
	if r.sweep8 == nil {
		var err error
		if r.sweep8, err = experiments.RunPCTSweep(r.opts, experiments.Fig8PCTs); err != nil {
			return nil, err
		}
	}
	return r.sweep8, nil
}

// flushProfiles finalizes any -cpuprofile/-memprofile outputs; fatal and
// main's defer both route through flushProfilesOnce so profiles survive
// error exits (os.Exit skips defers).
var (
	flushProfiles = func() {}
	profilesDone  bool
)

func flushProfilesOnce() {
	if !profilesDone {
		profilesDone = true
		flushProfiles()
	}
}

func fatal(err error) {
	flushProfilesOnce()
	fmt.Fprintln(os.Stderr, "lacc-bench:", err)
	os.Exit(1)
}

package main

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"

	"lacc/internal/experiments"
)

// The benchcore experiment is the benchmark-regression harness: it runs
// the tracked core benchmarks (the same workload/configuration pairs as
// BenchmarkAckwiseVsFullmap, BenchmarkFig8And9Sweep and
// BenchmarkMultiExperimentSweep in bench_test.go) through
// testing.Benchmark and reports ns/op, allocs/op and B/op. MultiSweep is
// the experiment-level number: three overlapping PCT sweeps in one
// session, covering the corpus cache, cross-experiment dedup and the
// simulator pool.
//
//	lacc-bench -json benchcore > BENCH_core.json     # refresh the baseline
//	lacc-bench -check-bench BENCH_core.json benchcore # CI regression gate
//
// The check mode fails (exit 1) when allocs/op regresses more than 20%
// against the committed baseline, or when ns/op regresses beyond its
// tolerance band. The two gates have very different widths: allocs/op is
// deterministic for a given code path and tolerates only jitter, while
// ns/op varies with the host — CI runners differ from the machines
// baselines were recorded on — so its band is wide (2.5x) and only
// catches order-of-magnitude blowups such as an accidentally quadratic
// loop or a lost fast path, not percent-level drift.

// CoreBenchResult is one core benchmark's measurement, as committed in
// BENCH_core.json.
type CoreBenchResult struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
}

// allocRegressionLimit is the relative allocs/op growth tolerated before
// the check fails; allocSlack absorbs fixed jitter on tiny counts.
// nsRegressionLimit is the ns/op tolerance band: wide, because wall time
// is host-dependent (see the package comment).
const (
	allocRegressionLimit = 1.20
	allocSlack           = 8
	nsRegressionLimit    = 2.5
)

// coreBenchmarks are the tracked benchmark bodies, shared with
// bench_test.go through internal/experiments (CoreBenchAckwise and
// CoreBenchPCTSweep) so this gate and the published benchmarks cannot
// measure different configurations.
var coreBenchmarks = []struct {
	name string
	fn   func(b *testing.B)
}{
	{"AckwiseVsFullmap", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := experiments.CoreBenchAckwise(); err != nil {
				b.Fatal(err)
			}
		}
	}},
	{"PCTSweep", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := experiments.CoreBenchPCTSweep(); err != nil {
				b.Fatal(err)
			}
		}
	}},
	{"MultiSweep", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := experiments.CoreBenchMultiSweep(); err != nil {
				b.Fatal(err)
			}
		}
	}},
	{"LargeMesh256", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := experiments.CoreBenchLargeMesh256(); err != nil {
				b.Fatal(err)
			}
		}
	}},
	{"LargeMesh256Sharded", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := experiments.CoreBenchLargeMesh256Sharded(); err != nil {
				b.Fatal(err)
			}
		}
	}},
}

// runBenchCore measures the core benchmarks, emits results (JSON or a
// table) and, when baselinePath is set, enforces the allocs/op gate.
func runBenchCore(jsonOut bool, baselinePath string) error {
	results := make([]CoreBenchResult, 0, len(coreBenchmarks))
	for _, cb := range coreBenchmarks {
		fn := cb.fn
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			fn(b)
		})
		results = append(results, CoreBenchResult{
			Name:        cb.name,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: float64(r.AllocsPerOp()),
			BytesPerOp:  float64(r.AllocedBytesPerOp()),
		})
	}

	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(results); err != nil {
			return err
		}
	} else {
		for _, r := range results {
			fmt.Printf("%-20s %14.0f ns/op %12.0f allocs/op %14.0f B/op\n",
				r.Name, r.NsPerOp, r.AllocsPerOp, r.BytesPerOp)
		}
	}

	if baselinePath == "" {
		return nil
	}
	return checkAgainstBaseline(results, baselinePath)
}

// checkAgainstBaseline compares allocs/op against the committed baseline.
// The comparison table goes to stderr so `-json ... > file` redirections
// stay valid JSON.
func checkAgainstBaseline(results []CoreBenchResult, path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("benchcore baseline: %w", err)
	}
	var baseline []CoreBenchResult
	if err := json.Unmarshal(data, &baseline); err != nil {
		return fmt.Errorf("benchcore baseline %s: %w", path, err)
	}
	base := make(map[string]CoreBenchResult, len(baseline))
	for _, b := range baseline {
		base[b.Name] = b
	}
	measured := make(map[string]bool, len(results))
	failed := false
	for _, r := range results {
		measured[r.Name] = true
		b, ok := base[r.Name]
		if !ok {
			fmt.Fprintf(os.Stderr, "benchcore: %s missing from baseline %s (refresh it)\n", r.Name, path)
			failed = true
			continue
		}
		limit := b.AllocsPerOp*allocRegressionLimit + allocSlack
		status := "ok"
		if r.AllocsPerOp > limit {
			status = "REGRESSION"
			failed = true
		}
		nsLimit := b.NsPerOp * nsRegressionLimit
		nsStatus := "ok"
		if r.NsPerOp > nsLimit {
			nsStatus = "REGRESSION"
			failed = true
		}
		fmt.Fprintf(os.Stderr, "%-20s allocs/op %10.0f -> %10.0f (limit %.0f) %s | ns/op %12.0f -> %12.0f (limit %.0f) %s\n",
			r.Name, b.AllocsPerOp, r.AllocsPerOp, limit, status,
			b.NsPerOp, r.NsPerOp, nsLimit, nsStatus)
	}
	// The gate must stay bidirectional: a benchmark present in the
	// baseline but no longer measured means the gate silently narrowed.
	for _, b := range baseline {
		if !measured[b.Name] {
			fmt.Fprintf(os.Stderr, "benchcore: baseline entry %s is no longer measured (refresh %s)\n", b.Name, path)
			failed = true
		}
	}
	if failed {
		return fmt.Errorf("benchcore: allocs/op (>%.0f%%) or ns/op (>%.1fx) regressed against %s (refresh with `lacc-bench -json benchcore > %s` if intentional)",
			(allocRegressionLimit-1)*100, nsRegressionLimit, path, path)
	}
	return nil
}

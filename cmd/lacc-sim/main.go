// Command lacc-sim runs one benchmark under one machine configuration and
// prints the paper's evaluation metrics: completion time and its breakdown,
// the dynamic energy breakdown, L1-D miss classification and protocol
// activity.
//
// Usage:
//
//	lacc-sim -workload streamcluster -pct 4
//	lacc-sim -workload matmul -pct 1 -classifier-k 0 -json
//	lacc-sim -list
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"lacc"
	"lacc/internal/report"
)

func main() {
	var (
		list       = flag.Bool("list", false, "list available workloads and exit")
		workload   = flag.String("workload", "streamcluster", "benchmark to run (see -list)")
		cores      = flag.Int("cores", 64, "number of cores (tiles)")
		meshWidth  = flag.Int("mesh-width", 8, "mesh X dimension (must divide cores)")
		scale      = flag.Float64("scale", 1.0, "problem-size multiplier")
		seed       = flag.Uint64("seed", 0, "workload randomness seed")
		protocol   = flag.String("protocol", "adaptive", "coherence protocol: adaptive, mesi, dragon, dls, neat, hybrid")
		pct        = flag.Int("pct", 4, "private caching threshold (1 = baseline directory protocol)")
		ratMax     = flag.Int("ratmax", 16, "maximum remote access threshold")
		ratLevels  = flag.Int("ratlevels", 2, "number of RAT levels")
		timestamp  = flag.Bool("timestamp", false, "use the exact Timestamp classification instead of RAT")
		oneWay     = flag.Bool("oneway", false, "use the simpler Adapt1-way protocol (no promotions)")
		classifier = flag.Int("classifier-k", 3, "Limited-k classifier size (0 = Complete classifier)")
		ackwise    = flag.Int("ackwise", 4, "ACKwise hardware pointers (>= cores = full-map)")
		jsonOut    = flag.Bool("json", false, "print the raw result as JSON")
		perCore    = flag.Bool("percore", false, "print per-core statistics")
	)
	flag.Parse()

	if *list {
		t := report.NewTable("available workloads", "name", "suite", "paper size", "default size")
		for _, w := range lacc.Workloads() {
			t.AddRow(w.Name, w.Suite, w.PaperSize, w.DefaultSize)
		}
		if err := t.Write(os.Stdout); err != nil {
			fatal(err)
		}
		return
	}

	cfg := lacc.DefaultConfig()
	cfg.Cores = *cores
	cfg.MeshWidth = *meshWidth
	if cfg.MemControllers > cfg.Cores {
		cfg.MemControllers = cfg.Cores
	}
	cfg.ProtocolKind = lacc.ProtocolKind(*protocol)
	cfg.Protocol.PCT = *pct
	cfg.Protocol.RATMax = *ratMax
	cfg.Protocol.NRATLevels = *ratLevels
	cfg.Protocol.UseTimestamp = *timestamp
	cfg.Protocol.OneWay = *oneWay
	cfg.ClassifierK = *classifier
	cfg.AckwisePointers = *ackwise

	res, err := lacc.RunWorkload(cfg, *workload, *scale, *seed)
	if err != nil {
		fatal(err)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fatal(err)
		}
		return
	}

	fmt.Printf("workload %s on %d cores (protocol=%s, pct=%d, classifier-k=%d, ackwise=%d)\n\n",
		*workload, *cores, res.Protocol, *pct, *classifier, *ackwise)
	fmt.Printf("completion: %d cycles\n", res.CompletionCycles)

	tt := res.Time.Total()
	bt := report.NewTable("completion time breakdown (all cores)", "component", "cycles", "share")
	for _, row := range []struct {
		name string
		v    float64
	}{
		{"compute", res.Time.Compute},
		{"L1 to L2", res.Time.L1ToL2},
		{"L2 waiting", res.Time.L2Waiting},
		{"L2 to sharers", res.Time.L2Sharers},
		{"off-chip", res.Time.OffChip},
		{"synchronization", res.Time.Sync},
	} {
		bt.AddRowValues(row.name, row.v, share(row.v, tt))
	}
	bt.AddRowValues("total", tt, "1.000")
	mustWrite(bt)

	et := res.Energy.Total()
	be := report.NewTable("dynamic energy breakdown", "component", "pJ", "share")
	for _, row := range []struct {
		name string
		v    float64
	}{
		{"L1-I cache", res.Energy.L1I},
		{"L1-D cache", res.Energy.L1D},
		{"L2 cache", res.Energy.L2},
		{"directory", res.Energy.Directory},
		{"network router", res.Energy.Router},
		{"network link", res.Energy.Link},
	} {
		be.AddRowValues(row.name, row.v, share(row.v, et))
	}
	be.AddRowValues("total", et, "1.000")
	mustWrite(be)

	bm := report.NewTable(fmt.Sprintf("L1-D misses (rate %.2f%%)", res.L1DMissRate()),
		"type", "count")
	for k, label := range []string{"cold", "capacity", "upgrade", "sharing", "word"} {
		bm.AddRowValues(label, res.L1D.Misses[k])
	}
	mustWrite(bm)

	bp := report.NewTable("protocol activity", "event", "count")
	bp.AddRowValues("remote->private promotions", res.Promotions)
	bp.AddRowValues("private->remote demotions", res.Demotions)
	bp.AddRowValues("remote word reads", res.WordReads)
	bp.AddRowValues("remote word writes", res.WordWrites)
	bp.AddRowValues("sharer word updates", res.UpdateWrites)
	bp.AddRowValues("invalidations", res.Invalidations)
	bp.AddRowValues("broadcast invalidations", res.BroadcastInvalidations)
	bp.AddRowValues("R-NUCA page reclassifications", res.Reclassifications)
	bp.AddRowValues("DRAM reads / writes", fmt.Sprintf("%d / %d", res.DRAMReads, res.DRAMWrites))
	mustWrite(bp)

	if *perCore {
		bc := report.NewTable(
			fmt.Sprintf("per-core statistics (load imbalance %.3f)", res.Imbalance()),
			"core", "finish", "compute", "miss-rate", "L1I-misses")
		for i := range res.PerCore {
			c := &res.PerCore[i]
			bc.AddRowValues(i, uint64(c.Finish), c.Time.Compute,
				fmt.Sprintf("%.2f%%", c.L1D.Rate()), c.L1IMisses)
		}
		mustWrite(bc)
	}
}

func share(v, total float64) string {
	if total == 0 {
		return "0.000"
	}
	return fmt.Sprintf("%.3f", v/total)
}

func mustWrite(t *report.Table) {
	fmt.Println()
	if err := t.Write(os.Stdout); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lacc-sim:", err)
	os.Exit(1)
}

// Benchmarks: one testing.B target per table and figure of the paper (at a
// reduced 16-core/0.1-scale configuration so `go test -bench=.` finishes in
// minutes; the full-size runs live in cmd/lacc-bench), plus micro-benchmarks
// of the simulation substrates.
package lacc_test

import (
	"io"
	"testing"

	"lacc"
	"lacc/internal/cache"
	"lacc/internal/coherence"
	"lacc/internal/core"
	"lacc/internal/dram"
	"lacc/internal/experiments"
	"lacc/internal/mem"
	"lacc/internal/network"
	"lacc/internal/sim"
	"lacc/internal/workloads"
)

// benchOptions is the reduced machine used by the figure benchmarks.
func benchOptions(benches ...string) experiments.Options {
	return experiments.Options{
		Cores: 16, MeshWidth: 4, Scale: 0.1, Seed: 1, Benchmarks: benches,
	}
}

func BenchmarkTable1Render(b *testing.B) {
	cfg := sim.Default()
	for i := 0; i < b.N; i++ {
		if err := experiments.RenderTable1(cfg, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2Render(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := experiments.RenderTable2(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStorageOverhead(b *testing.B) {
	cfg := sim.Default()
	for i := 0; i < b.N; i++ {
		r := experiments.Storage(cfg)
		if r.Limited3KB != 18 {
			b.Fatal("storage arithmetic drifted")
		}
	}
}

func BenchmarkFig1And2(b *testing.B) {
	o := benchOptions("streamcluster", "blackscholes")
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig1And2(o); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig8And9Sweep(b *testing.B) {
	b.ReportAllocs() // sweep body shared with the benchcore regression harness
	for i := 0; i < b.N; i++ {
		sw, err := experiments.CoreBenchPCTSweep()
		if err != nil {
			b.Fatal(err)
		}
		if err := sw.RenderFig8(io.Discard); err != nil {
			b.Fatal(err)
		}
		if err := sw.RenderFig9(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig10MissBreakdown(b *testing.B) {
	o := benchOptions("blackscholes", "canneal")
	for i := 0; i < b.N; i++ {
		sw, err := experiments.RunPCTSweep(o, []int{1, 4})
		if err != nil {
			b.Fatal(err)
		}
		if err := sw.RenderFig10(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig11Geomean(b *testing.B) {
	o := benchOptions("streamcluster", "matmul")
	for i := 0; i < b.N; i++ {
		sw, err := experiments.RunPCTSweep(o, []int{1, 2, 4, 8})
		if err != nil {
			b.Fatal(err)
		}
		if f := sw.Fig11(); len(f.Points) != 4 {
			b.Fatal("short sweep")
		}
	}
}

func BenchmarkFig12RATSensitivity(b *testing.B) {
	o := benchOptions("streamcluster")
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig12(o); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig13LimitedK(b *testing.B) {
	o := benchOptions("streamcluster")
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig13(o); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig14OneWay(b *testing.B) {
	o := benchOptions("bodytrack", "dijkstra-ss")
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig14(o); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAckwiseVsFullmap(b *testing.B) {
	b.ReportAllocs() // body shared with the benchcore regression harness
	for i := 0; i < b.N; i++ {
		if _, err := experiments.CoreBenchAckwise(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMultiExperimentSweep measures the experiment scheduler end to
// end: three overlapping PCT sweeps in one session, the shape of a real
// multi-figure lacc-bench invocation. Corpus caching, cross-experiment
// result dedup and simulator reuse all land here, so this is the number
// the sweep-level regression gate tracks.
func BenchmarkMultiExperimentSweep(b *testing.B) {
	b.ReportAllocs() // body shared with the benchcore regression harness
	for i := 0; i < b.N; i++ {
		if err := experiments.CoreBenchMultiSweep(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLargeMesh256 measures the tracked large-mesh scenario:
// streamcluster at 256 cores (16x16 mesh, 4x the paper's core count)
// under the adaptive protocol and the full-map MESI baseline. The body is
// shared with the benchcore regression harness through
// experiments.CoreBenchLargeMesh256.
func BenchmarkLargeMesh256(b *testing.B) {
	b.ReportAllocs() // body shared with the benchcore regression harness
	for i := 0; i < b.N; i++ {
		if _, err := experiments.CoreBenchLargeMesh256(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLargeMesh256Sharded is the same scenario on the shard-parallel
// engine (4 shards of 64 tiles). Compare against BenchmarkLargeMesh256 to
// measure the sharded engine's speedup — which requires GOMAXPROCS >= 4;
// on fewer CPUs the shard workers time-slice and the number reports the
// engine's coordination overhead instead. The body is shared with the
// benchcore regression harness through
// experiments.CoreBenchLargeMesh256Sharded.
func BenchmarkLargeMesh256Sharded(b *testing.B) {
	b.ReportAllocs() // body shared with the benchcore regression harness
	for i := 0; i < b.N; i++ {
		if _, err := experiments.CoreBenchLargeMesh256Sharded(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulatorThroughput measures raw simulation speed (accesses per
// second) on one representative run.
func BenchmarkSimulatorThroughput(b *testing.B) {
	b.ReportAllocs()
	cfg := lacc.DefaultConfig()
	cfg.Cores = 16
	cfg.MeshWidth = 4
	cfg.MemControllers = 2
	w := workloads.MustByName("streamcluster")
	spec := workloads.Spec{Cores: 16, Scale: 0.25, Seed: 1}
	var accesses uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := lacc.Run(cfg, w.Streams(spec))
		if err != nil {
			b.Fatal(err)
		}
		accesses += res.DataAccesses
	}
	b.ReportMetric(float64(accesses)/float64(b.N), "accesses/run")
}

// --- substrate micro-benchmarks ---

func BenchmarkMeshUnicast(b *testing.B) {
	m := network.New(network.Config{Width: 8, Height: 8, HopLatency: 2})
	for i := 0; i < b.N; i++ {
		m.Unicast(0, 63, 9, mem.Cycle(i))
	}
}

func BenchmarkMeshBroadcast(b *testing.B) {
	m := network.New(network.Config{Width: 8, Height: 8, HopLatency: 2})
	for i := 0; i < b.N; i++ {
		m.Broadcast(27, 1, mem.Cycle(i))
	}
}

func BenchmarkCacheInsertEvict(b *testing.B) {
	c := cache.New(32*1024, 4)
	for i := 0; i < b.N; i++ {
		a := mem.Addr(i) * mem.LineBytes
		if l := c.Probe(a); l == nil {
			c.Insert(a)
		}
	}
}

func BenchmarkCacheProbeHit(b *testing.B) {
	c := cache.New(32*1024, 4)
	c.Insert(0)
	for i := 0; i < b.N; i++ {
		if c.Probe(0) == nil {
			b.Fatal("lost the line")
		}
	}
}

func BenchmarkLimited3Classifier(b *testing.B) {
	cls := core.NewClassifier(64, 3)
	p := core.DefaultParams()
	for i := 0; i < b.N; i++ {
		st := cls.Lookup(i % 64)
		core.RemoteAccess(p, st, false, false)
	}
}

func BenchmarkCompleteClassifier(b *testing.B) {
	cls := core.NewClassifier(64, 0)
	p := core.DefaultParams()
	for i := 0; i < b.N; i++ {
		st := cls.Lookup(i % 64)
		core.Classify(p, st, uint32(i%8), i%2 == 0)
	}
}

func BenchmarkSharerSetAddRemove(b *testing.B) {
	s := coherence.NewSharerSet(4)
	for i := 0; i < b.N; i++ {
		id := i % 16
		if !s.Contains(id) {
			s.Add(id)
		}
		s.Remove(id)
	}
}

func BenchmarkDRAMService(b *testing.B) {
	m := dram.New(dram.Config{
		Controllers: 8, LatencyCycles: 100, BytesPerCycle: 5,
		Tiles: dram.DefaultTiles(8, 8, 8),
	})
	for i := 0; i < b.N; i++ {
		m.Read(i%8, mem.LineBytes, mem.Cycle(i))
	}
}

func BenchmarkTraceGeneration(b *testing.B) {
	w := workloads.MustByName("canneal")
	spec := workloads.Spec{Cores: 4, Scale: 0.1, Seed: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, s := range w.Streams(spec) {
			for {
				if _, ok := s.Next(); !ok {
					break
				}
			}
			s.Close()
		}
	}
}

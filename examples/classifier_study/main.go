// classifier_study reproduces a reduced Figure 13: how closely does the
// cheap Limited-k locality classifier (k tracked sharers + majority voting)
// track the Complete classifier that stores state for every core?
//
// The paper's answer — Limited3 stays within ~3% while needing 18 KB
// instead of 192 KB per core — is also printed via the Section 3.6 storage
// arithmetic.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"lacc"
)

func main() {
	var (
		cores   = flag.Int("cores", 16, "number of cores")
		width   = flag.Int("mesh-width", 4, "mesh X dimension")
		scale   = flag.Float64("scale", 0.25, "problem-size multiplier")
		benches = flag.String("benchmarks",
			"streamcluster,bodytrack,radix,dijkstra-ss",
			"comma-separated benchmarks")
	)
	flag.Parse()

	opts := lacc.ExperimentOptions{
		Cores:      *cores,
		MeshWidth:  *width,
		Scale:      *scale,
		Benchmarks: strings.Split(*benches, ","),
	}
	f, err := lacc.ExperimentFig13(opts)
	if err != nil {
		log.Fatal(err)
	}
	if err := f.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	fmt.Println("storage cost of the classifiers (64-core Table 1 machine):")
	if err := lacc.StorageOverhead(lacc.DefaultConfig()).Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// custom_workload shows the trace-generation API: a user-defined SPMD
// kernel written against lacc.Emitter, run under both the baseline and the
// adaptive protocol.
//
// The kernel is a producer/consumer pipeline with two kinds of data:
//
//   - a "results" table each core writes once per round and its neighbor
//     reads once — classic low-utilization sharing that the adaptive
//     protocol services with cheap word accesses instead of whole-line
//     installs and invalidations, and
//   - a private scratch buffer with heavy reuse that must stay privately
//     cached at any threshold.
package main

import (
	"fmt"
	"log"

	"lacc"
)

const (
	cores   = 16
	rounds  = 64
	scratch = 64 // words of hot private data per core
)

// kernel emits one core's trace.
func kernel(c int) lacc.GenFunc {
	return func(e *lacc.Emitter) {
		// Page-aligned regions: results are shared, scratch is per-core.
		results := lacc.DataBase
		mine := lacc.DataBase + lacc.PageBytes + lacc.Addr(c)*lacc.PageBytes

		for round := 0; round < rounds; round++ {
			// Hot private phase: repeated passes over the scratch buffer.
			for pass := 0; pass < 4; pass++ {
				for i := 0; i < scratch; i++ {
					e.Read(mine + lacc.Addr(i)*lacc.WordBytes)
					e.Compute(1)
				}
			}
			e.Write(mine)

			// Publish one result word; the table interleaves cores so each
			// line ping-pongs between eight writers.
			e.Write(results + lacc.Addr(c)*lacc.WordBytes)

			// Read the left neighbor's latest result.
			left := (c + cores - 1) % cores
			e.Read(results + lacc.Addr(left)*lacc.WordBytes)

			e.Barrier(uint64(round))
		}
	}
}

func runAt(pct int) *lacc.Result {
	cfg := lacc.DefaultConfig()
	cfg.Cores = cores
	cfg.MeshWidth = 4
	cfg.MemControllers = 2
	cfg.Protocol.PCT = pct

	gens := make([]lacc.GenFunc, cores)
	for c := range gens {
		gens[c] = kernel(c)
	}
	res, err := lacc.RunGenerators(cfg, gens)
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func main() {
	baseline := runAt(1)
	adaptive := runAt(4)

	fmt.Printf("custom producer/consumer kernel, %d cores, %d rounds\n\n", cores, rounds)
	fmt.Printf("%-28s %12s %12s\n", "", "PCT 1", "PCT 4")
	fmt.Printf("%-28s %12d %12d\n", "completion (cycles)",
		baseline.CompletionCycles, adaptive.CompletionCycles)
	fmt.Printf("%-28s %12.0f %12.0f\n", "energy (pJ)",
		baseline.Energy.Total(), adaptive.Energy.Total())
	fmt.Printf("%-28s %12d %12d\n", "invalidations",
		baseline.Invalidations, adaptive.Invalidations)
	fmt.Printf("%-28s %12d %12d\n", "remote word accesses",
		baseline.WordReads+baseline.WordWrites,
		adaptive.WordReads+adaptive.WordWrites)
	fmt.Printf("%-28s %12d %12d\n", "demotions",
		baseline.Demotions, adaptive.Demotions)

	fmt.Println("\nthe ping-pong result lines are demoted to remote mode and serviced")
	fmt.Println("as word accesses; the hot scratch buffer stays privately cached.")
}

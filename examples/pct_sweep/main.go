// pct_sweep reproduces a reduced Figure 11: sweep the Private Caching
// Threshold over a subset of benchmarks and print the geometric means of
// completion time and energy, normalized to the PCT 1 baseline.
//
// Flags select the machine size and benchmark subset; the defaults finish
// in well under a minute on a laptop.
package main

import (
	"flag"
	"log"
	"os"
	"strings"

	"lacc"
)

func main() {
	var (
		cores   = flag.Int("cores", 16, "number of cores")
		width   = flag.Int("mesh-width", 4, "mesh X dimension")
		scale   = flag.Float64("scale", 0.25, "problem-size multiplier")
		benches = flag.String("benchmarks",
			"streamcluster,blackscholes,matmul,dijkstra-ss,canneal,tsp",
			"comma-separated benchmarks")
	)
	flag.Parse()

	opts := lacc.ExperimentOptions{
		Cores:      *cores,
		MeshWidth:  *width,
		Scale:      *scale,
		Benchmarks: strings.Split(*benches, ","),
	}
	sweep, err := lacc.ExperimentPCTSweep(opts, []int{1, 2, 3, 4, 5, 6, 8, 12, 16})
	if err != nil {
		log.Fatal(err)
	}
	if err := sweep.Fig11().Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

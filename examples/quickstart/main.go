// Quickstart: simulate one benchmark under the baseline directory protocol
// (PCT 1) and under the locality-aware adaptive protocol (PCT 4), and print
// the headline comparison the paper makes.
package main

import (
	"fmt"
	"log"

	"lacc"
)

func main() {
	const workload = "streamcluster"
	const scale = 0.5 // laptop-friendly problem size

	cfg := lacc.DefaultConfig() // Table 1: 64 cores, ACKwise4, Limited3

	cfg.Protocol.PCT = 1 // baseline: every miss installs a private copy
	baseline, err := lacc.RunWorkload(cfg, workload, scale, 0)
	if err != nil {
		log.Fatal(err)
	}

	cfg.Protocol.PCT = 4 // the paper's chosen threshold
	adaptive, err := lacc.RunWorkload(cfg, workload, scale, 0)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%s on %d cores (scale %.2f)\n\n", workload, cfg.Cores, scale)
	fmt.Printf("%-22s %15s %15s\n", "", "baseline (PCT1)", "adaptive (PCT4)")
	fmt.Printf("%-22s %15d %15d\n", "completion (cycles)",
		baseline.CompletionCycles, adaptive.CompletionCycles)
	fmt.Printf("%-22s %15.0f %15.0f\n", "energy (pJ)",
		baseline.Energy.Total(), adaptive.Energy.Total())
	fmt.Printf("%-22s %14.2f%% %14.2f%%\n", "L1-D miss rate",
		baseline.L1DMissRate(), adaptive.L1DMissRate())
	fmt.Printf("%-22s %15d %15d\n", "invalidations",
		baseline.Invalidations, adaptive.Invalidations)
	fmt.Printf("%-22s %15d %15d\n", "remote word accesses",
		baseline.WordReads+baseline.WordWrites, adaptive.WordReads+adaptive.WordWrites)

	dTime := 100 * (1 - float64(adaptive.CompletionCycles)/float64(baseline.CompletionCycles))
	dEnergy := 100 * (1 - adaptive.Energy.Total()/baseline.Energy.Total())
	fmt.Printf("\nadaptive protocol: %.1f%% faster, %.1f%% less energy\n", dTime, dEnergy)
	fmt.Println("(paper, geomean over 21 benchmarks: 15% faster, 25% less energy)")
}

package lacc

import (
	"lacc/internal/experiments"
)

// ExperimentOptions selects machine size, workload scale and benchmark
// subset for the paper's evaluation experiments. The zero value reproduces
// the paper's setup: 64 cores, scale 1.0, all 21 benchmarks. Session
// shares the simulation cache across calls, Context cancels a running
// experiment (queued simulations are abandoned), and Progress observes
// per-simulation completion — see experiments.Options for field details.
type ExperimentOptions = experiments.Options

// ExperimentSession carries work-avoidance state across experiment calls:
// identical (benchmark, configuration) simulations run once per session,
// and workers reuse pooled simulators. Set ExperimentOptions.Session to
// share one across a batch of experiments (as lacc-bench does per
// invocation).
type ExperimentSession = experiments.Session

// NewExperimentSession returns an empty session.
func NewExperimentSession() *ExperimentSession {
	return experiments.NewSession()
}

// NewExperimentSessionWithStore returns an empty session whose misses
// also consult (and whose fresh results also populate) a durable
// ResultStore, making repeated experiments restart-warm: a result
// computed by any previous process over the same store directory is
// decoded from disk instead of re-simulated. store may be nil (plain
// in-memory session) and logf may be nil (silent); the session never
// closes the store — its owner does.
func NewExperimentSessionWithStore(store *ResultStore, logf func(format string, args ...any)) *ExperimentSession {
	return experiments.NewSessionWithStore(store, logf)
}

// PCTSweep holds one simulation per (benchmark, PCT) — the data behind
// Figures 8, 9, 10 and 11. Render the individual figures with RenderFig8,
// RenderFig9, RenderFig10 and Fig11().Render.
type PCTSweep = experiments.PCTSweep

// ExperimentPCTSweep simulates every selected benchmark at every PCT.
// Passing nil pcts uses the Figure 8 sweep (1..8).
func ExperimentPCTSweep(o ExperimentOptions, pcts []int) (*PCTSweep, error) {
	return experiments.RunPCTSweep(o, pcts)
}

// ExperimentFig1And2 collects the baseline invalidation/eviction
// utilization histograms of Figures 1 and 2.
func ExperimentFig1And2(o ExperimentOptions) (*experiments.Fig1And2Result, error) {
	return experiments.Fig1And2(o)
}

// ExperimentFig12 runs the remote-access-threshold sensitivity study of
// Figure 12 (Timestamp vs RAT-level/threshold variants).
func ExperimentFig12(o ExperimentOptions) (*experiments.Fig12Result, error) {
	return experiments.Fig12(o)
}

// ExperimentFig13 runs the Limited-k classifier accuracy study of
// Figure 13.
func ExperimentFig13(o ExperimentOptions) (*experiments.Fig13Result, error) {
	return experiments.Fig13(o)
}

// ExperimentFig14 compares the Adapt1-way protocol against the full
// two-way protocol (Figure 14).
func ExperimentFig14(o ExperimentOptions) (*experiments.Fig14Result, error) {
	return experiments.Fig14(o)
}

// ExperimentProtocolComparison runs every selected benchmark under each
// coherence protocol side by side. A nil kinds list compares full-map MESI
// (the reference), Dragon write-update and the locality-aware adaptive
// protocol.
func ExperimentProtocolComparison(o ExperimentOptions, kinds []ProtocolKind) (*experiments.ProtocolComparisonResult, error) {
	return experiments.ProtocolComparison(o, kinds)
}

// ExperimentAckwise compares ACKwise-p pointer counts against the full-map
// directory (the Section 5 prologue check; nil pointers = {4, cores}).
func ExperimentAckwise(o ExperimentOptions, pointers []int) (*experiments.AckwiseComparisonResult, error) {
	return experiments.AckwiseComparison(o, pointers)
}

// StorageOverhead reproduces the Section 3.6 storage arithmetic for a
// machine configuration.
func StorageOverhead(cfg Config) experiments.StorageResult {
	return experiments.Storage(cfg)
}

// ExperimentVictimReplication compares the unmanaged baseline, the Victim
// Replication scheme (Section 2.1) and the locality-aware protocol on the
// same substrate.
func ExperimentVictimReplication(o ExperimentOptions) (*experiments.VictimReplicationResult, error) {
	return experiments.VictimReplication(o)
}

// ExperimentStorageScaling evaluates classifier storage across core counts
// (Section 3.6's 1024-core claim).
func ExperimentStorageScaling(coreCounts []int) *experiments.StorageScalingResult {
	return experiments.StorageScaling(coreCounts)
}

// ExperimentPerformanceScaling measures the adaptive protocol's improvement
// over the baseline as the machine grows.
func ExperimentPerformanceScaling(o ExperimentOptions, coreCounts []int) (*experiments.PerformanceScalingResult, error) {
	return experiments.PerformanceScaling(o, coreCounts)
}

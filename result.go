package lacc

import (
	"lacc/internal/sim"
	"lacc/internal/stats"
)

// Result is the outcome of one simulation: completion time, the paper's
// latency and energy breakdowns, cache miss classification, protocol
// activity (promotions, demotions, word accesses, invalidations), network
// and DRAM counters, and the Figure 1/2 utilization histograms.
type Result = sim.Result

// TimeBreakdown decomposes completion time into the paper's components:
// compute, L1-to-L2, L2 waiting, L2-to-sharers, off-chip and
// synchronization (Section 4.4).
type TimeBreakdown = stats.TimeBreakdown

// EnergyBreakdown decomposes dynamic energy by component: L1-I, L1-D, L2,
// directory, network routers and network links (Figure 8).
type EnergyBreakdown = stats.EnergyBreakdown

// MissStats classifies L1-D misses into cold, capacity, upgrade, sharing
// and word misses (Section 4.4).
type MissStats = stats.MissStats

// MissKind identifies one of the paper's five miss classes.
type MissKind = stats.MissKind

// Miss classes.
const (
	MissCold     = stats.MissCold
	MissCapacity = stats.MissCapacity
	MissUpgrade  = stats.MissUpgrade
	MissSharing  = stats.MissSharing
	MissWord     = stats.MissWord
)

// UtilizationHistogram buckets line utilization at eviction/invalidation
// time into the paper's Figure 1/2 bins (1, 2-3, 4-5, 6-7, >=8).
type UtilizationHistogram = stats.UtilizationHistogram

// GeoMean returns the geometric mean of xs, ignoring non-positive values —
// the aggregation the paper uses for cross-benchmark results.
func GeoMean(xs []float64) float64 { return stats.GeoMean(xs) }

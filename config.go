package lacc

import (
	"lacc/internal/core"
	"lacc/internal/energy"
	"lacc/internal/mem"
	"lacc/internal/sim"
)

// Config describes the simulated machine: core count and mesh geometry,
// cache hierarchy, ACKwise directory, DRAM, the locality-aware protocol
// parameters and the energy model. See sim.Config for field documentation.
type Config = sim.Config

// ProtocolParams are the locality-aware protocol parameters: PCT, the RAT
// ladder, the exact Timestamp mode and the Adapt1-way variant.
type ProtocolParams = core.Params

// ProtocolKind selects a coherence protocol implementation via
// Config.ProtocolKind. See the Protocol* constants for the registered
// implementations.
type ProtocolKind = sim.ProtocolKind

// Registered coherence protocols, selectable per simulation through
// Config.ProtocolKind (the empty string means ProtocolAdaptive).
const (
	// ProtocolAdaptive is the paper's locality-aware adaptive protocol:
	// an ACKwise directory with per-(line, core) private/remote
	// classification and word-granular remote accesses.
	ProtocolAdaptive = sim.ProtocolAdaptive
	// ProtocolMESI is the classic full-map MESI directory baseline:
	// whole-line transfers, write-invalidate, exact sharer vector.
	ProtocolMESI = sim.ProtocolMESI
	// ProtocolDragon is the Dragon-style write-update baseline: writes to
	// shared lines push the word to all sharers instead of invalidating.
	ProtocolDragon = sim.ProtocolDragon
	// ProtocolDLS is the directoryless shared-LLC baseline: no private
	// data caching and no directory state; every access is a word-granular
	// round trip to the line's home L2 slice.
	ProtocolDLS = sim.ProtocolDLS
	// ProtocolNeat is the low-complexity bounded-metadata baseline: a
	// single-pointer directory whose overflow falls back to broadcast,
	// with cores self-invalidating their shared copies at synchronization
	// points.
	ProtocolNeat = sim.ProtocolNeat
	// ProtocolHybrid switches per line between MESI write-invalidate and
	// Dragon write-update, driven by the same locality classifier the
	// adaptive protocol uses.
	ProtocolHybrid = sim.ProtocolHybrid
)

// ProtocolKinds returns the registered coherence protocols, sorted.
func ProtocolKinds() []ProtocolKind { return sim.ProtocolKinds() }

// EnergyParams are the per-event dynamic energy constants of the 11 nm
// McPAT/DSENT-style model.
type EnergyParams = energy.Params

// DefaultConfig returns the paper's Table 1 machine: 64 cores on an 8x8
// mesh, 16/32 KB L1s, 256 KB L2 slices, ACKwise4, 8 memory controllers,
// PCT 4, RATmax 16, 2 RAT levels and the Limited3 classifier.
func DefaultConfig() Config { return sim.Default() }

// DefaultProtocol returns the paper's protocol defaults (PCT 4, RATmax 16,
// nRATlevels 2).
func DefaultProtocol() ProtocolParams { return core.DefaultParams() }

// DefaultEnergy returns the default 11 nm energy constants.
func DefaultEnergy() EnergyParams { return energy.DefaultParams() }

// Address space and geometry constants re-exported for trace construction.
const (
	// LineBytes is the cache line size (64 B).
	LineBytes = mem.LineBytes
	// PageBytes is the OS page size used by R-NUCA classification (4 KB).
	PageBytes = mem.PageBytes
	// WordBytes is the remote-access word size (8 B, one flit payload).
	WordBytes = mem.WordBytes
	// DataBase is a safe base address for custom workload data: it is page
	// aligned and far below the simulator's synthetic instruction segment.
	DataBase Addr = 1 << 22
)

// Addr is a 48-bit physical byte address.
type Addr = mem.Addr

// Cycle is a simulated clock value at 1 GHz (1 cycle = 1 ns).
type Cycle = mem.Cycle

// Access is one trace operation (a read, write, barrier, lock or unlock,
// preceded by Gap compute cycles).
type Access = mem.Access

// AccessKind discriminates trace operations.
type AccessKind = mem.AccessKind

// Trace operation kinds.
const (
	Read    = mem.Read
	Write   = mem.Write
	Barrier = mem.Barrier
	Lock    = mem.Lock
	Unlock  = mem.Unlock
)
